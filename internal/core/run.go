package core

import (
	"math"

	"repro/internal/hgraph"
)

// Run executes one full protocol run on the given network. byz marks the
// Byzantine nodes (may be all-false), adv drives them (use
// HonestAdversary{} when byz is empty), and cfg selects the algorithm and
// parameters.
//
// The run proceeds in the paper's global synchronous schedule: phases
// i = 1, 2, …, each of i·α_i subphases, each flooding for exactly i rounds.
// It stops when every honest uncrashed node has decided, or at the
// MaxPhase safety cap (survivors are reported undecided).
//
// Run constructs a fresh arena per call; callers executing many runs
// (sweeps, trial loops) should hold a World and use its Run/RunTopology
// methods, which reuse the arena's buffers and worker pool across runs.
func Run(net *hgraph.Network, byz []bool, adv Adversary, cfg Config) (*Result, error) {
	w := NewWorld()
	defer w.Close()
	return w.Run(net, byz, adv, cfg)
}

// Run resets the arena for (net, byz, adv, cfg) and executes the protocol.
func (w *World) Run(net *hgraph.Network, byz []bool, adv Adversary, cfg Config) (*Result, error) {
	if err := w.Reset(net, byz, adv, cfg); err != nil {
		return nil, err
	}
	return w.run()
}

// RunTopology is Run with the per-network tables supplied by the caller
// (the sweep layer caches them alongside each generated network).
func (w *World) RunTopology(topo *Topology, byz []bool, adv Adversary, cfg Config) (*Result, error) {
	if err := w.ResetTopology(topo, byz, adv, cfg); err != nil {
		return nil, err
	}
	return w.run()
}

// run executes the protocol on a freshly Reset arena.
func (w *World) run() (*Result, error) {
	w.adv.Init(w)

	if w.Cfg.Algorithm == AlgorithmByzantine {
		w.runExchange()
	}
	w.scheduleFaults()

	for i := 1; i <= w.Cfg.MaxPhase; i++ {
		w.applyFaults(i)
		active := w.activeCount()
		if w.Cfg.RecordPhaseActivity {
			w.activePerPhase = append(w.activePerPhase, active)
		}
		if active == 0 {
			break
		}
		w.runPhase(i)
	}

	return w.buildResult(), nil
}

// runPhase executes phase i for every node in lockstep.
func (w *World) runPhase(i int) {
	n := w.N()
	for v := 0; v < n; v++ {
		w.continueFlag[v] = false
	}
	if w.Cfg.RecordFrontierOccupancy {
		w.occStepped, w.occRounds = 0, 0
		defer func() {
			frac := 1.0
			if w.occRounds > 0 {
				frac = float64(w.occStepped) / (float64(n) * float64(w.occRounds))
			}
			w.occPerPhase = append(w.occPerPhase, frac)
		}()
	}
	subphases := w.Sched.Subphases(i)
	theta := w.Sched.Threshold(i)
	for j := 1; j <= subphases; j++ {
		w.runSubphase(i, j)
		// Evaluate the continue criterion (Algorithm 1 lines 16–18):
		// k_i > k_t for all t < i, and k_i > θ_i.
		for v := 0; v < n; v++ {
			if !w.IsActive(v) {
				continue
			}
			if w.kFinal[v] > w.maxEarly[v] && float64(w.kFinal[v]) > theta {
				w.continueFlag[v] = true
			}
		}
	}
	// Decision (Algorithm 1 lines 20–24).
	for v := 0; v < n; v++ {
		if w.IsActive(v) && !w.continueFlag[v] {
			w.decided[v] = int32(i)
			w.decidedRound[v] = w.globalRound
		}
	}
	if po, ok := w.Cfg.Observer.(PhaseObserver); ok {
		po.PhaseEnd(w)
	}
}

// runSubphase executes one subphase of phase i: color generation followed
// by exactly i flooding rounds. With the frontier engine enabled, rounds
// 1 and i sweep every node (all inputs changed at color generation; the
// final round captures kFinal network-wide) and the rounds between step
// only the dirty worklist (see frontier.go).
func (w *World) runSubphase(i, j int) {
	n := w.N()
	w.Clock = Clock{Phase: i, Subphase: j, Round: 0}

	w.entryRound = 0

	// Color generation (Algorithm 1 lines 10–11). Decided nodes stop
	// generating but keep forwarding; crashed nodes are silent.
	cur := w.held.Cur()
	for v := 0; v < n; v++ {
		var c int64
		if w.IsActive(v) {
			c = int64(w.colorSrc[v].Geometric())
		}
		w.color[v] = c
		cur[v] = c
		w.heldLog[v][0] = c
		w.logUpTo[v] = 0
		w.maxEarly[v] = 0
		w.kFinal[v] = 0
	}
	w.fr.resetQuiet()
	w.adv.SubphaseStart(w)

	verify := w.Cfg.Algorithm == AlgorithmByzantine
	frontier := w.Cfg.FrontierRounds.enabled()
	hOff, hAdj := w.topo.hOff, w.topo.hAdj
	rev := w.topo.rev
	for t := 1; t <= i; t++ {
		w.Clock.Round = t
		full := !frontier || t == 1 || t == i || w.fr.nextFull
		w.fr.nextFull = false
		// Latch Byzantine sends for this round (serial, so adversaries
		// need no internal synchronization for Send). Entry e = (b → nb)
		// latches into the slot receivers read for it, byzIn[rev[e]];
		// parallel edges share a slot and the last Send wins, as with
		// the seed's map. Send is invoked for every edge in every round
		// regardless of scheduling — stateful adversaries must see the
		// identical call sequence — and on frontier rounds a slot that
		// latches a different value dirties its receiver.
		for _, b := range w.byzList {
			for e := hOff[b]; e < hOff[b+1]; e++ {
				slot := w.byzIn[rev[e]]
				send := w.adv.Send(w, int(b), int(hAdj[e]), t)
				if !full && send != w.byzSends[slot] {
					w.markLatchedSend(hAdj[e])
				}
				w.byzSends[slot] = send
			}
		}
		w.stepRound, w.stepPhase, w.stepVerify = t, i, verify
		if full {
			w.pool.ForChunks(n, w.stepFn)
		} else {
			w.pool.ForChunks(len(w.fr.list), w.stepListFn)
			if w.plan.lossThresh != 0 {
				w.quietLossPass(t, i)
			}
			// Flooding cost of every sleeping node, in one fold.
			w.counters.AddAggregate(w.fr.quietMsgs, w.fr.quietBits)
		}
		w.advanceLogWatermark(t, full)
		if w.Cfg.RecordFrontierOccupancy {
			if full {
				w.occStepped += int64(n)
			} else {
				w.occStepped += int64(len(w.fr.list))
			}
			w.occRounds++
		}
		if frontier && t+1 < i {
			// Round t+1 needs a worklist only when it is itself a
			// frontier round (the final round sweeps everything).
			w.buildFrontier(full)
		}
		w.held.Swap()
		w.counters.CountRound()
		w.globalRound++
		if thr := w.Cfg.InjectionThreshold; thr > 0 && w.entryRound == 0 {
			// First round of this subphase at which any honest node holds
			// an injected color: the Lemma 16 "entry" event.
			for v := 0; v < n; v++ {
				if !w.Byz[v] && !w.crashed[v] && w.held.Cur()[v] >= thr {
					w.entryRound = t
					break
				}
			}
		}
		if w.Cfg.Observer != nil {
			w.Cfg.Observer.RoundEnd(w)
		}
	}
	if w.entryRound > 0 {
		if w.injectionEntries == nil {
			w.injectionEntries = make(map[int]int)
		}
		w.injectionEntries[w.entryRound]++
	}
	w.Clock.Round = 0
}

// maxCandidates bounds the per-node improvement-candidate buffer. H-degree
// is the paper's constant d (8–16), so the bound only binds at synthetic
// high-degree configurations; when it does, candBuf keeps the largest
// candidates instead of the first arrivals.
const maxCandidates = 64

// candBuf is the bounded per-round improvement-candidate buffer. It lives
// on stepNode's stack; once full it tracks the index of its smallest kept
// value, so the common overflow outcome — the offered candidate loses to
// everything kept — rejects on a single compare instead of the full-buffer
// scan the previous eviction path paid on every overflow. Only an actual
// replacement rescans for the new minimum.
type candBuf struct {
	vals [maxCandidates]int64
	from [maxCandidates]int32
	n    int
	min  int // index of the smallest kept value; valid once n == maxCandidates
}

// refreshMin rescans for the smallest kept value, keeping the first index
// on ties (matching the argmin scan the old eviction used, so eviction
// order — and therefore every golden digest — is unchanged).
func (b *candBuf) refreshMin() {
	b.min = 0
	for q := 1; q < maxCandidates; q++ {
		if b.vals[q] < b.vals[b.min] {
			b.min = q
		}
	}
}

// insert records candidate (c, nb), evicting the smallest kept candidate
// when full and c beats it. Reports whether the buffer overflowed.
func (b *candBuf) insert(c int64, nb int32) (overflowed bool) {
	if b.n < maxCandidates {
		b.vals[b.n], b.from[b.n] = c, nb
		b.n++
		if b.n == maxCandidates {
			b.refreshMin()
		}
		return false
	}
	if c > b.vals[b.min] {
		b.vals[b.min], b.from[b.min] = c, nb
		b.refreshMin()
	}
	return true
}

// stepNode advances node v through round t of an i-round subphase:
// deliver neighbor sends, verify improvements, update the held color and
// the k_t bookkeeping.
func (w *World) stepNode(v, t, i int, verify bool) {
	cur := w.held.Cur()
	next := w.held.Next()

	if w.crashed[v] {
		next[v] = 0
		w.hasCand[v] = false
		return
	}

	hAdj := w.topo.hAdj
	begin, end := w.topo.hOff[v], w.topo.hOff[v+1]

	lossy := w.plan.lossThresh != 0

	if w.Byz[v] {
		// Bookkeeping only: Byzantine nodes "hold" the max of everything
		// they hear, giving strategies a sane protocol-following default.
		best := cur[v]
		for e := begin; e < end; e++ {
			nb := hAdj[e]
			if !w.crashed[nb] && cur[nb] > best {
				if lossy && w.dropRecv(e) {
					continue
				}
				best = cur[nb]
			}
		}
		next[v] = best
		w.heldLog[v][t] = best
		w.hasCand[v] = false
		return
	}

	heldv := cur[v]
	// Flooding cost: v sent its held color to all H-neighbors this round
	// (the degree falls out of the CSR offsets).
	if heldv > 0 {
		w.counters.CountMessages(int(end-begin), messageBits(heldv))
	}

	var kt int64 // max reception this round (after verification)
	var cands candBuf
	for e := begin; e < end; e++ {
		nb := hAdj[e]
		var c int64
		if slot := w.byzIn[e]; slot >= 0 {
			c = w.byzSends[slot]
		} else if !w.crashed[nb] {
			c = cur[nb]
		}
		if c == 0 {
			continue
		}
		// Omission faults: the reception on this directed edge is lost in
		// transit this round (the sender still paid to transmit).
		if lossy && w.dropRecv(e) {
			w.dropped.Add(1)
			continue
		}
		if c <= heldv {
			// Sub-maximum receptions (echoes) need no verification: they
			// can never strictly exceed the final-round echo floor.
			if c > kt {
				kt = c
			}
			continue
		}
		if cands.insert(c, nb) {
			w.candOverflows.Add(1)
		}
	}
	// Improvement candidates force a re-step next round even when the
	// held value stays put: failed candidates are re-verified (with
	// round-dependent outcomes and attestation costs) every round.
	w.hasCand[v] = cands.n > 0

	newHeld := heldv
	if cands.n > 0 {
		// Verify improvement candidates best-first; the first that passes
		// is the verified fresh maximum. Failed candidates are discarded
		// (Algorithm 2: inconsistent high values are dropped). Selection
		// is an in-place bounded scan — descending value, ties in arrival
		// order — instead of the seed's per-node sort.Slice allocation.
		for {
			best := -1
			var bc int64
			for q := 0; q < cands.n; q++ {
				if cands.vals[q] > bc {
					bc, best = cands.vals[q], q
				}
			}
			if best < 0 {
				break
			}
			cands.vals[best] = 0 // consumed (candidates are all > heldv >= 0)
			if verify && !w.verifyColor(v, cands.from[best], bc, t) {
				continue
			}
			if bc > kt {
				kt = bc
			}
			newHeld = bc
			break
		}
	}

	next[v] = newHeld
	w.heldLog[v][t] = newHeld
	if t < i {
		if kt > w.maxEarly[v] {
			w.maxEarly[v] = kt
		}
	} else {
		w.kFinal[v] = kt
	}
}

// buildResult snapshots the world into an immutable Result.
func (w *World) buildResult() *Result {
	n := w.N()
	res := &Result{
		N:         n,
		D:         w.Net.Params.D,
		K:         w.Net.K,
		LogN:      math.Log2(float64(n)),
		Algorithm: w.Cfg.Algorithm,
		Epsilon:   w.Cfg.Epsilon,
		Estimates: append([]int32(nil), w.decided...),
		DecidedAt: append([]int64(nil), w.decidedRound...),
		Crashed:   append([]bool(nil), w.crashed...),
		Byzantine: append([]bool(nil), w.Byz...),
		Rounds:    w.globalRound,

		ActivePerPhase: append([]int(nil), w.activePerPhase...),
	}
	snap := w.counters.Snapshot()
	res.Messages = snap.Messages
	res.Bits = snap.Bits
	res.MaxMessageBits = snap.MaxBits
	if w.Cfg.RecordFrontierOccupancy {
		res.FrontierOccupancy = append([]float64(nil), w.occPerPhase...)
	}
	if w.injectionEntries != nil {
		res.InjectionEntryRounds = make(map[int]int, len(w.injectionEntries))
		for t, c := range w.injectionEntries {
			res.InjectionEntryRounds[t] = c
		}
	}
	for v := 0; v < n; v++ {
		switch {
		case w.Byz[v]:
			res.ByzantineCount++
		case w.crashed[v]:
			res.CrashedCount++
		case w.decided[v] == 0:
			res.UndecidedCount++
		default:
			if p := int(w.decided[v]); p > res.Phases {
				res.Phases = p
			}
		}
	}
	res.HonestCount = n - res.ByzantineCount
	res.ChurnCrashes = w.churnCrashes
	res.Rejoins = w.rejoins
	res.DroppedMessages = w.dropped.Load()
	return res
}
