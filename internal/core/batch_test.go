package core_test

// batch_test.go pins the batched round engine (batch.go) against the
// scalar engines, per lane, byte-for-byte. The batch engine is only
// allowed to exist because every lane of a batched invocation produces
// the same Result digest as running that lane through core.Run alone:
// the golden grid replays golden_test.go's pinned digests through batched
// lane groups in both frontier modes, and the property suite sweeps a
// randomized grid of lane mixtures (placement, adversary, fault model,
// loss, lane count — including single-lane batches) against fresh scalar
// runs.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

// goldenLaneSpec converts a golden-grid case into a batch lane, matching
// runGoldenCaseMode parameter for parameter.
func goldenLaneSpec(t testing.TB, gc goldenCase, mode core.FrontierMode) core.LaneSpec {
	t.Helper()
	var byz []bool
	if gc.byzCount > 0 {
		byz = hgraph.PlaceByzantine(goldenN, gc.byzCount, rng.New(goldenByzSeed))
	}
	adv, ok := adversary.ByName(gc.adversary)
	if !ok {
		t.Fatalf("unknown adversary %q", gc.adversary)
	}
	cfg := core.Config{
		Algorithm:      gc.algorithm,
		Seed:           goldenRunSeed,
		Workers:        1,
		Churn:          core.ChurnConfig{Crashes: gc.churn, Seed: goldenRunSeed + 1},
		FrontierRounds: mode,
	}
	if gc.join > 0 {
		cfg.Faults = append(cfg.Faults, core.JoinChurn{Count: gc.join, Seed: goldenRunSeed + 2})
	}
	if gc.loss > 0 {
		cfg.Faults = append(cfg.Faults, core.MessageLoss{Prob: gc.loss})
	}
	return core.LaneSpec{Byz: byz, Adv: adv, Cfg: cfg}
}

// TestBatchGoldenResults groups the golden grid by algorithm (the only
// case field batch lanes must share — adversaries, placements, churn,
// join, and loss all vary within a group) and asserts every lane of the
// batched invocation reproduces its pinned scalar digest, under both the
// frontier and the dense round engine.
func TestBatchGoldenResults(t *testing.T) {
	if *printGolden {
		t.Skip("printing mode")
	}
	net := hgraph.MustNew(hgraph.Params{N: goldenN, D: goldenD, Seed: goldenNetSeed})
	topo := core.NewTopology(net)
	for _, mode := range []struct {
		name string
		fm   core.FrontierMode
	}{{"frontier", core.FrontierOn}, {"dense", core.FrontierOff}} {
		for _, alg := range []core.Algorithm{core.AlgorithmBasic, core.AlgorithmByzantine} {
			var group []goldenCase
			for _, gc := range goldenCases {
				if gc.algorithm == alg {
					group = append(group, gc)
				}
			}
			name := fmt.Sprintf("%s/%v/lanes=%d", mode.name, alg, len(group))
			t.Run(name, func(t *testing.T) {
				specs := make([]core.LaneSpec, len(group))
				for l, gc := range group {
					specs[l] = goldenLaneSpec(t, gc, mode.fm)
				}
				results, err := core.RunBatch(topo, specs)
				if err != nil {
					t.Fatal(err)
				}
				for l, gc := range group {
					if got := resultDigest(t, results[l]); got != gc.digest {
						t.Errorf("lane %d (%s): digest mismatch:\n got %s\nwant %s", l, gc.name, got, gc.digest)
					}
				}
			})
		}
	}
}

// TestBatchGoldenSingleLane replays every golden case as a one-lane batch
// (B=1): the mask-parallel kernel with a single bit set must still be the
// scalar engine bit for bit.
func TestBatchGoldenSingleLane(t *testing.T) {
	if *printGolden {
		t.Skip("printing mode")
	}
	net := hgraph.MustNew(hgraph.Params{N: goldenN, D: goldenD, Seed: goldenNetSeed})
	topo := core.NewTopology(net)
	bw := core.NewBatchWorld()
	defer bw.Close()
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			results, err := bw.RunTopology(topo, []core.LaneSpec{goldenLaneSpec(t, gc, core.FrontierAuto)})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultDigest(t, results[0]); got != gc.digest {
				t.Errorf("digest mismatch:\n got %s\nwant %s", got, gc.digest)
			}
		})
	}
}

// TestBatchGoldenWorkerInvariant re-runs the batched golden groups with
// parallel sim workers: chunked dispatch with the per-chunk counter fold
// must reproduce the pinned serial digests exactly.
func TestBatchGoldenWorkerInvariant(t *testing.T) {
	if *printGolden {
		t.Skip("printing mode")
	}
	net := hgraph.MustNew(hgraph.Params{N: goldenN, D: goldenD, Seed: goldenNetSeed})
	topo := core.NewTopology(net)
	for _, alg := range []core.Algorithm{core.AlgorithmBasic, core.AlgorithmByzantine} {
		var group []goldenCase
		for _, gc := range goldenCases {
			if gc.algorithm == alg {
				group = append(group, gc)
			}
		}
		t.Run(fmt.Sprintf("%v", alg), func(t *testing.T) {
			specs := make([]core.LaneSpec, len(group))
			for l, gc := range group {
				specs[l] = goldenLaneSpec(t, gc, core.FrontierAuto)
				specs[l].Cfg.Workers = 4
			}
			results, err := core.RunBatch(topo, specs)
			if err != nil {
				t.Fatal(err)
			}
			for l, gc := range group {
				if got := resultDigest(t, results[l]); got != gc.digest {
					t.Errorf("lane %d (%s): digest with 4 sim workers:\n got %s\nwant %s", l, gc.name, got, gc.digest)
				}
			}
		})
	}
}

// TestBatchScalarEquivalenceProperty sweeps a randomized grid of batched
// lane mixtures — placement, adversary, Byzantine count, churn, join,
// loss, per-lane seeds, lane counts from 1 up — and asserts each lane's
// Result is identical, field for field and digest for digest, to a fresh
// scalar core.Run of the same configuration. The arena is reused across
// trials (varying lane counts exercise arena rewind and lane-count
// shrink/grow), and trials alternate frontier modes.
func TestBatchScalarEquivalenceProperty(t *testing.T) {
	placements := []string{"random", "clustered", "spread", "degree", "chain"}
	adversaries := []string{"none", "honest", "inflate", "suppress", "oracle", "topology-liar", "chain-faker", "combo"}
	losses := []float64{0, 0, 0.05, 0.15}
	src := rng.New(0xBA7C4)

	trials := 12
	if testing.Short() {
		trials = 4
	}
	bw := core.NewBatchWorld()
	defer bw.Close()
	for trial := 0; trial < trials; trial++ {
		n := 96 + 32*src.Intn(3)
		netSeed := uint64(4400 + trial)
		net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: netSeed})
		topo := core.NewTopology(net)
		algorithm := core.AlgorithmByzantine
		if src.Intn(3) == 0 {
			algorithm = core.AlgorithmBasic
		}
		mode := core.FrontierOn
		if trial%2 == 1 {
			mode = core.FrontierOff
		}
		lanes := 1 + src.Intn(8)

		specs := make([]core.LaneSpec, lanes)
		labels := make([]string, lanes)
		for l := 0; l < lanes; l++ {
			placement := placements[src.Intn(len(placements))]
			advName := adversaries[src.Intn(len(adversaries))]
			byzCount := src.Intn(5)
			loss := losses[src.Intn(len(losses))]
			cfg := core.Config{
				Algorithm:      algorithm,
				Seed:           netSeed + uint64(100+l*7),
				Workers:        1 + src.Intn(3),
				FrontierRounds: mode,
			}
			switch src.Intn(3) {
			case 1:
				cfg.Churn = core.ChurnConfig{Crashes: 1 + src.Intn(4), Seed: netSeed + uint64(11+l)}
			case 2:
				cfg.Faults = append(cfg.Faults, core.JoinChurn{Count: 1 + src.Intn(6), Seed: netSeed + uint64(13+l)})
			}
			if loss > 0 {
				cfg.Faults = append(cfg.Faults, core.MessageLoss{Prob: loss})
			}
			var byz []bool
			if byzCount > 0 {
				pl, ok := hgraph.PlacementByName(placement)
				if !ok {
					t.Fatalf("unknown placement %q", placement)
				}
				byz = pl.Place(net.H, byzCount, rng.New(netSeed+uint64(17+l)))
			}
			adv, ok := adversary.ByName(advName)
			if !ok {
				t.Fatalf("unknown adversary %q", advName)
			}
			specs[l] = core.LaneSpec{Byz: byz, Adv: adv, Cfg: cfg}
			labels[l] = fmt.Sprintf("lane=%d place=%s adv=%s byz=%d loss=%g churn=%d faults=%d",
				l, placement, advName, byzCount, loss, cfg.Churn.Crashes, len(cfg.Faults))
		}

		batched, err := bw.RunTopology(topo, specs)
		if err != nil {
			t.Fatalf("trial=%d: %v", trial, err)
		}
		for l := 0; l < lanes; l++ {
			// Fresh adversary instance: the stateful ones latch per-run state.
			sc := specs[l]
			scalar, err := core.Run(net, sc.Byz, freshAdversary(t, sc.Adv), sc.Cfg)
			if err != nil {
				t.Fatalf("trial=%d %s: scalar: %v", trial, labels[l], err)
			}
			if !reflect.DeepEqual(batched[l], scalar) {
				t.Fatalf("trial=%d n=%d alg=%v mode=%v lanes=%d %s: results diverge:\nbatch  %+v\nscalar %+v",
					trial, n, algorithm, mode, lanes, labels[l], batched[l], scalar)
			}
			if db, ds := resultDigest(t, batched[l]), resultDigest(t, scalar); db != ds {
				t.Fatalf("trial=%d %s: digests diverge: %s vs %s", trial, labels[l], db, ds)
			}
		}
	}
}

// freshAdversary returns a new instance of the same adversary type, since
// stateful adversaries must not be shared between the batched run and its
// scalar oracle.
func freshAdversary(t testing.TB, adv core.Adversary) core.Adversary {
	t.Helper()
	if adv == nil {
		return nil
	}
	for _, name := range adversary.Names() {
		candidate, _ := adversary.ByName(name)
		if reflect.TypeOf(candidate) == reflect.TypeOf(adv) {
			return candidate
		}
	}
	t.Fatalf("no registered adversary of type %T", adv)
	return nil
}
