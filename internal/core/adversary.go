package core

import "math/bits"

// Clock identifies a point in the protocol's global synchronous schedule.
// The network is synchronous, so i, j and t are common knowledge (§3.1).
type Clock struct {
	Phase    int // i >= 1
	Subphase int // j in 1..i·α_i
	Round    int // t in 1..i within the subphase; 0 between rounds
}

// Adversary drives the Byzantine nodes. It operates in the paper's
// full-information model: every method receives the *World, through which
// the complete state of all nodes — including their coin streams — is
// readable.
//
// Concurrency contract: Init, ClaimHNeighbors and SubphaseStart are called
// serially. Send is called serially at the start of each round (its results
// are latched for the round). Attest is called concurrently from the
// round's worker goroutines and must not mutate adversary or world state.
type Adversary interface {
	// Name identifies the strategy in reports.
	Name() string

	// Init is called once, after the world is constructed and before the
	// topology exchange.
	Init(w *World)

	// ClaimHNeighbors returns the H-adjacency list Byzantine node b reports
	// to honest node v during the topology exchange (Algorithm 2 line 1),
	// or nil to report truthfully. Claims of length != d, claims naming
	// nodes outside v's channel set, and claims contradicting an honest
	// endpoint all crash v (line 2) — which is usually the point.
	ClaimHNeighbors(w *World, b, v int) []int32

	// SubphaseStart is called at the beginning of every subphase, after
	// honest colors are drawn (the adversary sees them, and can clone coin
	// streams for future ones).
	SubphaseStart(w *World)

	// Send returns the color Byzantine node b floods to its H-neighbor v
	// in round t of the current subphase. Return 0 for silence. A faithful
	// (protocol-following) value is w.Held(b).
	Send(w *World, b, v, t int) int64

	// Attest reports whether Byzantine node b, when queried by verifier v,
	// vouches for having held a color >= c at round r of the current
	// subphase (r == 0 means "generated such a color"). Must be pure.
	Attest(w *World, b, v int, c int64, r int) bool
}

// HonestAdversary makes every Byzantine node follow the protocol exactly.
// It is the null strategy used to validate that Algorithm 2 degenerates to
// Algorithm 1 when nobody misbehaves.
type HonestAdversary struct{}

// Name implements Adversary.
func (HonestAdversary) Name() string { return "honest" }

// Init implements Adversary.
func (HonestAdversary) Init(*World) {}

// ClaimHNeighbors implements Adversary: truthful reports.
func (HonestAdversary) ClaimHNeighbors(*World, int, int) []int32 { return nil }

// SubphaseStart implements Adversary.
func (HonestAdversary) SubphaseStart(*World) {}

// Send implements Adversary: flood the genuinely held maximum.
func (HonestAdversary) Send(w *World, b, v, t int) int64 { return w.Held(b) }

// Attest implements Adversary: truthful attestation from the held log.
func (HonestAdversary) Attest(w *World, b, v int, c int64, r int) bool {
	return w.HeldLogAt(b, r) >= c
}

var _ Adversary = HonestAdversary{}

// messageBits returns the size in bits we charge for flooding a color:
// the paper's "small message" is a constant number of IDs plus O(log n)
// payload bits; we charge the variable payload (the color's bit length)
// plus one 64-bit ID for the sender. Negative colors cannot occur (colors
// are geometric draws or adversary sends folded through max with 0).
func messageBits(c int64) int {
	return 64 + bits.Len64(uint64(c))
}
