package core

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/rng"
)

// scriptedLiar lies in hand-written ways for exchange unit tests.
type scriptedLiar struct {
	HonestAdversary
	// claims[b] is what Byzantine node b reports to every victim
	// (nil = truthful).
	claims map[int][]int32
}

func (s *scriptedLiar) Name() string { return "scripted" }

func (s *scriptedLiar) ClaimHNeighbors(w *World, b, v int) []int32 {
	return s.claims[b]
}

// exchangeWorld builds a world and runs only the exchange.
func exchangeWorld(t *testing.T, n int, byzIdx []int, adv Adversary) (*World, *hgraph.Network) {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, n)
	for _, b := range byzIdx {
		byz[b] = true
	}
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 5}.withDefaults(n)
	w := newWorld(net, byz, adv, cfg)
	t.Cleanup(w.Close)
	adv.Init(w)
	w.runExchange()
	return w, net
}

func countCrashed(w *World) int {
	c := 0
	for v := 0; v < w.N(); v++ {
		if w.crashed[v] {
			c++
		}
	}
	return c
}

func TestExchangeTruthfulNoCrashes(t *testing.T) {
	w, _ := exchangeWorld(t, 256, []int{3, 99}, HonestAdversary{})
	if c := countCrashed(w); c != 0 {
		t.Fatalf("truthful exchange crashed %d nodes", c)
	}
}

// A wrong-length claim must crash every honest node that hears it from
// within radius k-1 (H is d-regular "in the victim's eyes").
func TestExchangeWrongDegreeCrashes(t *testing.T) {
	const b = 10
	adv := &scriptedLiar{claims: map[int][]int32{b: {1, 2, 3}}} // 3 entries, d = 8
	w, net := exchangeWorld(t, 256, []int{b}, adv)
	crashed := countCrashed(w)
	if crashed == 0 {
		t.Fatal("wrong-degree claim caused no crashes")
	}
	// Victims are exactly the honest nodes whose claimed-BFS examines b's
	// adjacency: those within distance k-1 of b... at least b's direct
	// H-neighbors must crash.
	for _, nb := range net.H.UniqueNeighbors(b) {
		if !w.Byz[nb] && !w.crashed[nb] {
			t.Fatalf("direct neighbor %d of the liar did not crash", nb)
		}
	}
}

// Hiding a real honest neighbor (Figure 1's "suppress the real child u")
// contradicts the victim's own channel evidence.
func TestExchangeHiddenNeighborCrashes(t *testing.T) {
	const b = 20
	net0, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	truth := net0.H.Neighbors(b)
	claim := append([]int32(nil), truth...)
	// Replace the first neighbor with a duplicate of the second: right
	// degree, but the hidden neighbor will contradict.
	hidden := claim[0]
	claim[0] = claim[1]
	adv := &scriptedLiar{claims: map[int][]int32{b: claim}}
	w, _ := exchangeWorld(t, 256, []int{b}, adv)
	if !w.crashed[hidden] && !w.Byz[int(hidden)] {
		t.Fatalf("hidden neighbor %d did not crash", hidden)
	}
}

// A claim naming a node the victim has no channel to (phantom) crashes.
func TestExchangePhantomCrashes(t *testing.T) {
	const n, b = 4096, 30
	net0, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the farthest node from b: any direct H-neighbor v of b has
	// dist(v, far) >= ecc(b) - 1 > k, so "far" is outside v's channel set.
	bfs := func() (int32, int32) {
		d := net0.H.Ball(b, n) // warm path; distances via Dist below
		_ = d
		far, best := int32(-1), -1
		for v := 0; v < n; v += 37 { // sample for speed
			if dv := net0.H.Dist(b, v); dv > best {
				best = dv
				far = int32(v)
			}
		}
		return far, int32(best)
	}
	far, ecc := bfs()
	if int(ecc) < net0.K+2 {
		t.Skipf("eccentricity %d too small for a guaranteed phantom", ecc)
	}
	truth := net0.H.Neighbors(b)
	claim := append([]int32(nil), truth...)
	claim[0] = far
	adv := &scriptedLiar{claims: map[int][]int32{b: claim}}

	byz := make([]bool, n)
	byz[b] = true
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 5}.withDefaults(n)
	w := newWorld(net0, byz, adv, cfg)
	defer w.Close()
	adv.Init(w)
	w.runExchange()
	// Every direct honest H-neighbor of b sees a claim naming a node it
	// has no channel to.
	for _, nb := range net0.H.UniqueNeighbors(b) {
		if !w.Byz[nb] && !w.crashed[nb] {
			t.Fatalf("neighbor %d accepted a phantom claim", nb)
		}
	}
}

// Crashed nodes must stay silent for the whole run and never decide.
func TestCrashedNodesAreSilent(t *testing.T) {
	const b = 10
	adv := &scriptedLiar{claims: map[int][]int32{b: {1, 2, 3}}}
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, 256)
	byz[b] = true
	res, err := Run(net, byz, adv, Config{Algorithm: AlgorithmByzantine, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedCount == 0 {
		t.Fatal("expected crashes")
	}
	for v := 0; v < res.N; v++ {
		if res.Crashed[v] && res.Estimates[v] != 0 {
			t.Fatalf("crashed node %d produced estimate %d", v, res.Estimates[v])
		}
	}
}

// The engine must produce identical results regardless of worker count:
// parallelism is an implementation detail, not a semantics change.
func TestWorkerCountInvariance(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 512, D: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	byz := hgraph.PlaceByzantine(512, 5, rng.New(32))
	run := func(workers int) *Result {
		res, err := Run(net, byz, HonestAdversary{}, Config{
			Algorithm: AlgorithmByzantine, Seed: 33, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if one.Rounds != four.Rounds {
		t.Fatalf("rounds differ across worker counts: %d vs %d", one.Rounds, four.Rounds)
	}
	for v := range one.Estimates {
		if one.Estimates[v] != four.Estimates[v] {
			t.Fatalf("node %d estimate differs across worker counts: %d vs %d",
				v, one.Estimates[v], four.Estimates[v])
		}
	}
	if one.Messages != four.Messages || one.Bits != four.Bits {
		t.Fatal("accounting differs across worker counts")
	}
}

// World accessors used by adversaries.
func TestWorldAccessors(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 128, D: 8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, 128)
	byz[7] = true
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 43}.withDefaults(128)
	w := newWorld(net, byz, HonestAdversary{}, cfg)
	defer w.Close()

	if w.N() != 128 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.ByzantineNodes(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("ByzantineNodes = %v", got)
	}
	if !w.IsActive(0) || w.IsActive(7) {
		t.Fatal("IsActive wrong")
	}
	// Coin stream clones must replay the node's own stream.
	a := w.CoinStream(3)
	bStream := w.CoinStream(3)
	for i := 0; i < 10; i++ {
		if a.Geometric() != bStream.Geometric() {
			t.Fatal("coin stream clones diverge")
		}
	}
	if w.HeldLogAt(0, -1) != 0 || w.HeldLogAt(0, 1<<20) != 0 {
		t.Fatal("out-of-range held log should be 0")
	}
	if w.GlobalRound() != 0 {
		t.Fatal("fresh world has nonzero round")
	}
}

// The adversary must be able to read honest colors right after
// SubphaseStart — full-information check, end to end.
func TestAdversarySeesColors(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 128, D: 8, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, 128)
	byz[0] = true
	spy := &colorSpy{}
	if _, err := Run(net, byz, spy, Config{Algorithm: AlgorithmByzantine, Seed: 53, MaxPhase: 2}); err != nil {
		t.Fatal(err)
	}
	if !spy.sawColors {
		t.Fatal("adversary never observed honest colors")
	}
}

type colorSpy struct {
	HonestAdversary
	sawColors bool
}

func (s *colorSpy) SubphaseStart(w *World) {
	for v := 0; v < w.N(); v++ {
		if !w.Byz[v] && w.OwnColor(v) > 0 {
			s.sawColors = true
			return
		}
	}
}
