// Package byzcount is the public API of this reproduction of "Network Size
// Estimation in Small-World Networks under Byzantine Faults" (Chatterjee,
// Pandurangan, Robinson; IPDPS 2019).
//
// The library simulates the paper's synchronous small-world network
// G = H ∪ L and runs its Byzantine counting protocol: every honest node
// estimates log₂ n — with n unknown — despite up to O(n^(1−δ))
// full-information Byzantine nodes.
//
// Quick start:
//
//	net, _ := byzcount.NewNetwork(byzcount.Params{N: 1024, D: 8, Seed: 1})
//	res, _ := byzcount.Run(net, nil, nil, byzcount.Config{
//	    Algorithm: byzcount.AlgorithmByzantine, Seed: 2,
//	})
//	sum := byzcount.Summarize(res, byzcount.DefaultBand)
//	fmt.Println(sum)
//
// The deeper layers are importable directly for specialized use:
// internal/core (protocol), internal/adversary (attack strategies),
// internal/hgraph (network model), internal/baseline (comparators),
// internal/spectral (expansion measurement), internal/expt (the
// experiment suite reproducing the paper's claims).
package byzcount

import (
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// Re-exported types: the façade keeps example and downstream code on one
// import while the implementation lives in focused internal packages.
type (
	// Params configures network generation (size, degree, lattice radius).
	Params = hgraph.Params
	// Network is a generated H ∪ L small-world instance.
	Network = hgraph.Network
	// Config parameterizes a protocol run.
	Config = core.Config
	// Result is the outcome of a run.
	Result = core.Result
	// Adversary drives the Byzantine nodes (full-information model).
	Adversary = core.Adversary
	// Summary condenses a Result into the paper's headline quantities.
	Summary = metrics.Summary
	// Band is an acceptance interval for estimate/log₂(n) ratios.
	Band = metrics.Band
	// World is a reusable simulation arena: Reset/Run rewind its buffers
	// and worker pool across runs instead of reallocating, and Topology
	// tables precomputed per network are shared across arenas. One-shot
	// callers can ignore it — Run below wraps the same lifecycle.
	World = core.World
	// Topology is the immutable per-network half of the arena (CSR
	// adjacency and the Byzantine send-slot index), computed once per
	// generated network and shareable across goroutines.
	Topology = core.Topology
	// FaultModel is one pluggable source of runtime faults (crash churn,
	// join/rejoin churn, message loss) composed via Config.Faults.
	FaultModel = core.FaultModel
	// CrashChurn schedules permanent mid-run crash failures (the classic
	// Config.Churn behavior as a fault model).
	CrashChurn = core.CrashChurn
	// JoinChurn schedules oblivious leave/rejoin churn (the dynamic
	// regime of arXiv:2204.11951).
	JoinChurn = core.JoinChurn
	// MessageLoss drops each directed reception independently with a
	// configured probability during the flooding rounds.
	MessageLoss = core.MessageLoss
	// FrontierMode selects the round-engine scheduling strategy
	// (Config.FrontierRounds): the quiescence-aware frontier engine by
	// default, or the dense reference loop — byte-identical Results.
	FrontierMode = core.FrontierMode
	// SweepSpec declares a scenario grid (cartesian products over n, d,
	// δ, adversary, placement, algorithm, ε, fault model, churn/join
	// fraction, message loss, trials).
	SweepSpec = sweep.Spec
	// SweepOptions configures sweep execution (workers, cache, store).
	SweepOptions = sweep.Options
	// SweepGroup is one grid cell's aggregate across its trials.
	SweepGroup = sweep.Group
)

// Algorithm selectors.
const (
	// AlgorithmBasic is the paper's Algorithm 1 (no Byzantine defenses).
	AlgorithmBasic = core.AlgorithmBasic
	// AlgorithmByzantine is the paper's Algorithm 2 (topology exchange +
	// chain-attestation verification).
	AlgorithmByzantine = core.AlgorithmByzantine
)

// Round-engine selectors (Config.FrontierRounds).
const (
	// FrontierAuto resolves to the frontier engine unless the
	// REPRO_FRONTIER=off environment override is set.
	FrontierAuto = core.FrontierAuto
	// FrontierOn forces quiescence-aware frontier scheduling.
	FrontierOn = core.FrontierOn
	// FrontierOff forces the dense reference loop.
	FrontierOff = core.FrontierOff
)

// DefaultBand is the constant-factor acceptance band used by the
// experiment suite.
var DefaultBand = metrics.DefaultBand

// NewNetwork generates a small-world network instance per the paper's
// model (§2.1): H(n,d) from d/2 random Hamiltonian cycles, plus lattice
// edges between all pairs within H-distance k = ⌈d/3⌉.
func NewNetwork(p Params) (*Network, error) { return hgraph.New(p) }

// PlaceByzantine marks `count` uniformly random Byzantine nodes, matching
// the paper's random-placement fault model. seed controls placement.
func PlaceByzantine(n, count int, seed uint64) []bool {
	return hgraph.PlaceByzantine(n, count, rng.New(seed))
}

// ByzantineBudget returns ⌊n^(1−δ)⌋, the paper's fault budget for a given
// tolerance exponent δ ∈ (3/d, 1].
func ByzantineBudget(n int, delta float64) int { return hgraph.ByzantineBudget(n, delta) }

// Run executes one protocol run. byz may be nil (no Byzantine nodes) and
// adv may be nil (protocol-following Byzantine behavior).
//
// Each call constructs and discards a simulation arena; callers looping
// over many runs should allocate one with NewWorld and call its Run
// method, which reuses the arena's state across runs.
func Run(net *Network, byz []bool, adv Adversary, cfg Config) (*Result, error) {
	return core.Run(net, byz, adv, cfg)
}

// NewWorld returns an empty reusable simulation arena. Close it when done.
func NewWorld() *World { return core.NewWorld() }

// NewTopology precomputes the engine's per-network tables for repeated
// runs on the same network (World.RunTopology skips recomputing them).
func NewTopology(net *Network) *Topology { return core.NewTopology(net) }

// NetStore is the persistent content-addressed topology store: generated
// networks and their engine tables serialized under a versioned binary
// codec, keyed by canonical Params. The sweep scheduler's network cache
// uses one as its disk tier (see the REPRO_NETSTORE environment
// variable, or pregenerate with `netgen -pregen`).
type NetStore = graphio.NetStore

// OpenNetStore opens (creating if needed) a topology store rooted at dir.
func OpenNetStore(dir string) (*NetStore, error) { return graphio.OpenNetStore(dir) }

// Summarize computes a run's headline metrics under the given band.
func Summarize(r *Result, band Band) Summary { return metrics.Summarize(r, band) }

// Sweep expands spec into its deterministic job grid and executes it
// through the parallel scheduler, returning per-cell aggregates in grid
// order. Aggregates are identical for any worker count; set opts.Store
// to persist results and resume interrupted grids.
func Sweep(spec SweepSpec, opts SweepOptions) ([]SweepGroup, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	outs, err := sweep.Run(jobs, opts)
	if err != nil {
		return nil, err
	}
	return sweep.Aggregate(outs), nil
}

// EstimateLogN is the one-call convenience entry point: generate a
// network of (hidden) size n, run Algorithm 2 with no Byzantine nodes, and
// return the median honest estimate of log₂ n.
func EstimateLogN(n int, seed uint64) (float64, error) {
	net, err := NewNetwork(Params{N: n, D: 8, Seed: seed})
	if err != nil {
		return 0, err
	}
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: seed + 1})
	if err != nil {
		return 0, err
	}
	return Summarize(res, DefaultBand).RatioMedian * res.LogN, nil
}
